// White-box tests for the balancer's incremental bookkeeping: the
// per-core membership lists, the speed-accounting purge on task exit,
// and the rescan wake loop's termination. They live in the package so
// they can compare the incremental state against a from-scratch scan.
package speedbal

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/linuxlb"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
)

// checkMembers verifies members[j] holds exactly the live managed
// threads with CoreID == cores[j], in rank (managed) order — the
// invariant that lets sample and pickVictim skip the full-managed scan.
func checkMembers(t *testing.T, b *Balancer) {
	t.Helper()
	for j, core := range b.cores {
		var want []*task.Task
		for _, tk := range b.managed {
			if tk.State != task.Done && tk.CoreID == core {
				want = append(want, tk)
			}
		}
		got := b.members[j]
		if len(got) != len(want) {
			t.Fatalf("core %d: members %v, want %v", core, names(got), names(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("core %d: members %v, want %v (order)", core, names(got), names(want))
			}
		}
	}
}

func names(ts []*task.Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// Membership lists stay consistent with t.CoreID under heavy migration
// from both balancers at once: the managed threads are left unpinned, so
// the Linux balancer moves them too, and every move must flow through
// the core-change hook.
func TestMembershipConsistencyUnderChurn(t *testing.T) {
	m := sim.New(topo.SMP(4), sim.Config{Seed: 31, NewScheduler: cfs.Factory()})
	m.AddActor(linuxlb.Default())

	var tasks []*task.Task
	for i := 0; i < 12; i++ {
		var acts []task.Action
		// Heterogeneous lifetimes: threads exit at different times, so
		// queue-length imbalances recur across the whole run and both
		// balancers keep moving threads.
		for k := 0; k < 4+2*i; k++ {
			acts = append(acts, task.Compute{Work: 1.5e8})
			if i%2 == 0 {
				// Half the threads sleep between bursts, creating idle
				// cores and new-idle pulls.
				acts = append(acts, task.Sleep{D: 20 * time.Millisecond})
			}
		}
		tk := m.NewTask(fmt.Sprintf("churn.%d", i), &task.Seq{Actions: acts})
		tasks = append(tasks, tk)
		// Cram everything onto two of the four cores so both balancers
		// have migrations to perform.
		m.StartOn(tk, i%2)
	}

	cfg := DefaultConfig()
	cfg.BlockNUMA = false
	b := New(cfg)
	b.Manage(m, tasks, cpuset.All(4))
	m.AddActor(b)

	for step := 0; step < 200; step++ {
		m.RunFor(50 * time.Millisecond)
		checkMembers(t, b)
	}
	if mig := m.Stats.TotalMigrations(); mig < 20 {
		t.Errorf("only %d migrations — churn too light to exercise the lists", mig)
	}
	if b.liveManaged != 0 {
		t.Errorf("liveManaged = %d after all threads finished", b.liveManaged)
	}
}

// The speed-accounting maps are purged as threads exit, and the rescan
// wake loop stops once the machine drains: after a churny dynamic-group
// run both maps are empty and no event remains queued.
func TestAccountingPurgeAndDrain(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 37, NewScheduler: cfs.Factory()})
	cfg := DefaultConfig()
	cfg.RescanGroup = "dyn"
	b := New(cfg)
	m.AddActor(b)

	// Three waves of short-lived group members, each spawned by a timer
	// so the rescan has to discover them.
	spawn := func(i int) {
		tk := m.NewTask(fmt.Sprintf("dyn.%d", i), &task.Seq{Actions: []task.Action{
			task.Compute{Work: 6e8},
		}})
		tk.Group = "dyn"
		m.StartOn(tk, i%2)
	}
	for i := 0; i < 6; i++ {
		i := i
		m.After(time.Duration(i)*400*time.Millisecond, func(int64) { spawn(i) })
	}

	// Run generously past the workload's end: before the drain fix the
	// rescan wake loop rescheduled itself forever, so a wake would still
	// be queued at any horizon.
	m.Run(int64(time.Hour))
	if b.Adopted != 6 {
		t.Errorf("adopted %d threads, want 6", b.Adopted)
	}
	if m.LiveTasks() != 0 {
		t.Errorf("%d live tasks after drain", m.LiveTasks())
	}
	if n := m.PendingEvents(); n != 0 {
		t.Errorf("%d events still queued after the machine drained", n)
	}
	if len(b.lastExec) != 0 {
		t.Errorf("lastExec holds %d entries after all threads exited", len(b.lastExec))
	}
	if len(b.lastWork) != 0 {
		t.Errorf("lastWork holds %d entries after all threads exited", len(b.lastWork))
	}
	if b.liveManaged != 0 {
		t.Errorf("liveManaged = %d, want 0", b.liveManaged)
	}
}

// A zero-length sample window must not consume the window: the next
// wake has to measure across the whole elapsed interval rather than
// publish a stale speed. sampled[j] may only advance when wall > 0.
func TestZeroWallSampleKeepsWindowOpen(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 41, NewScheduler: cfs.Factory()})
	tk := m.NewTask("app.0", &task.Seq{Actions: []task.Action{task.Compute{Work: 1e9}}})
	b := New(DefaultConfig())
	b.Manage(m, []*task.Task{tk}, cpuset.All(2))
	m.AddActor(b)
	m.StartOn(tk, 0)
	m.RunFor(250 * time.Millisecond)

	before := b.sampled[0]
	if before == 0 {
		t.Fatal("core 0 never sampled during warmup")
	}
	b.sample(0, before) // wall == 0
	if b.sampled[0] != before {
		t.Errorf("zero-wall sample advanced sampled[0] from %d to %d", before, b.sampled[0])
	}
	speed := b.speeds[0]
	b.sample(0, before-1) // wall < 0 (defensive)
	if b.sampled[0] != before || b.speeds[0] != speed {
		t.Error("negative-wall sample mutated balancer state")
	}
}

// With tracing off, a steady-state balance interval runs with a bounded
// number of allocations. Before the membership lists and reusable wake
// timers this figure was an order of magnitude higher (per-wake closure
// and Queued() slices); the bound fails if those return.
func TestWakeAllocationsBounded(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 43, NewScheduler: cfs.Factory()})
	var tasks []*task.Task
	for i := 0; i < 6; i++ {
		tk := m.NewTask(fmt.Sprintf("app.%d", i), &task.Seq{Actions: []task.Action{
			task.Compute{Work: 1e12},
		}})
		tasks = append(tasks, tk)
		m.StartOn(tk, i%2)
	}
	b := New(DefaultConfig())
	b.Manage(m, tasks, cpuset.All(2))
	m.AddActor(b)
	m.RunFor(2 * time.Second) // settle

	avg := testing.AllocsPerRun(20, func() {
		m.RunFor(100 * time.Millisecond)
	})
	t.Logf("allocs per balance interval: %v", avg)
	if avg > 200 {
		t.Errorf("steady-state interval allocates %v times, want ≤ 200", avg)
	}
}
