package difftest

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/exp"
	"repro/internal/linuxlb"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/topo"
)

// drawRun builds a random measurement spanning every topology family
// (including multi-socket fabrics), strategy and barrier model — the
// property-based workload generator the issue asks for. The draw is a
// pure function of the rng, so a failing draw index reproduces exactly.
func drawRun(rng *rand.Rand) exp.RunOpts {
	topos := []func() *topo.Topology{
		func() *topo.Topology { return topo.SMP(4) },
		topo.Tigerton,
		topo.Barcelona,
		topo.Nehalem,
		func() *topo.Topology { return topo.Fabric(2, 4) },
		func() *topo.Topology { return topo.Fabric(4, 8) },
	}
	strategies := []exp.Strategy{
		exp.StratPinned, exp.StratLoad, exp.StratSpeed, exp.StratDWRR, exp.StratULE,
	}
	models := []spmd.Model{
		spmd.UPC(), spmd.UPCSleep(), spmd.MPI(), spmd.OpenMPDefault(), spmd.OpenMPInfinite(),
	}
	tp := topos[rng.Intn(len(topos))]
	cores := tp().NumCores()
	o := exp.RunOpts{
		Topo:     tp,
		Strategy: strategies[rng.Intn(len(strategies))],
		Spec: spmd.Spec{
			Name:             "prop",
			Threads:          1 + rng.Intn(2*cores),
			Iterations:       1 + rng.Intn(10),
			WorkPerIteration: float64(1+rng.Intn(30)) * 1e6,
			WorkJitter:       0.3 * rng.Float64(),
			Model:            models[rng.Intn(len(models))],
			Affinity:         cpuset.All(1 + rng.Intn(cores)),
		},
		Seed: rng.Uint64(),
	}
	if rng.Intn(3) == 0 {
		o.Spec.MemIntensity = 0.9 * rng.Float64()
		o.Spec.RSSBytes = 1 << 20
	}
	if rng.Intn(3) == 0 {
		o.Perturb = drawPerturb(rng)
	}
	return o
}

// drawPerturb builds a random fault-injection mix: hotplug churn (the
// family that stresses cross-shard drains) plus a coin flip of each
// other family.
func drawPerturb(rng *rand.Rand) perturb.Config {
	cfg := perturb.Config{
		Hotplug: perturb.HotplugConfig{
			Interval:   time.Duration(10+rng.Intn(40)) * time.Millisecond,
			OffTime:    time.Duration(2+rng.Intn(15)) * time.Millisecond,
			Jitter:     rng.Float64(),
			MaxOffline: 1 + rng.Intn(2),
		},
	}
	if rng.Intn(2) == 0 {
		cfg.Noise = perturb.DefaultNoise()
		cfg.Noise.Kthread = rng.Intn(2) == 0
	}
	if rng.Intn(2) == 0 {
		cfg.Freq = perturb.DefaultFreq()
	}
	if rng.Intn(2) == 0 {
		cfg.Storm = perturb.DefaultStorm()
		cfg.Storm.Period = 60 * time.Millisecond
	}
	return cfg
}

// checkInvariants runs the physical-accounting checks both engines must
// satisfy independently of agreeing with each other: exec time never
// exceeds real time, and core busy/idle time fits in the elapsed time.
func checkInvariants(t *testing.T, label string, m *sim.Machine) {
	t.Helper()
	m.Sync()
	now := m.Now()
	if now <= 0 {
		t.Fatalf("%s: run did not advance", label)
	}
	for _, tk := range m.Tasks() {
		if alive := now - tk.StartedAt; int64(tk.ExecTime) > alive {
			t.Errorf("%s: task %q exec %v exceeds its real time %v",
				label, tk.Name, tk.ExecTime, time.Duration(alive))
		}
	}
	var busy time.Duration
	for _, c := range m.Cores {
		if int64(c.BusyTime) > now {
			t.Errorf("%s: core %d busy %v > elapsed %v", label, c.ID(), c.BusyTime, time.Duration(now))
		}
		if total := int64(c.BusyTime + c.IdleTime()); total > now {
			t.Errorf("%s: core %d busy+idle %v > elapsed %v",
				label, c.ID(), time.Duration(total), time.Duration(now))
		}
		busy += c.BusyTime
	}
	if limit := now * int64(len(m.Cores)); int64(busy) > limit {
		t.Errorf("%s: total busy %v exceeds elapsed × %d cores", label, busy, len(m.Cores))
	}
}

// TestPropertyEngineCrossCheck draws random (topology, workload,
// strategy, perturbation) measurements and runs each through the legacy
// engine and the sharded engine at shard counts {2, 4}, requiring
// byte-identical machine fingerprints and the invariant suite green on
// every engine.
func TestPropertyEngineCrossCheck(t *testing.T) {
	draws := 25
	if testing.Short() {
		draws = 5
	}
	rng := rand.New(rand.NewSource(20100109))
	for i := 0; i < draws; i++ {
		o := drawRun(rng)
		o.Limit = 10 * time.Second

		o.Shards = 0
		legacy := exp.Run(o)
		label := fmt.Sprintf("draw %d (%s on %s)", i, o.Strategy, legacy.Machine.Topo.Name)
		checkInvariants(t, label+" legacy", legacy.Machine)
		want := Fingerprint(legacy.Machine)

		for _, shards := range []int{2, 4} {
			o.Shards = shards
			res := exp.Run(o)
			checkInvariants(t, fmt.Sprintf("%s shards=%d", label, shards), res.Machine)
			if got := Fingerprint(res.Machine); got != want {
				t.Errorf("%s: shards=%d diverges from the single queue:\n%s",
					label, shards, firstDivergence(want, got))
			}
		}
	}
}

// propFabric builds a random multi-socket machine whose entire workload
// is socket-contained — per-socket pinned apps, per-socket balancer
// domains, optionally shard-local perturbation — the regime where
// parallel lookahead windows actually open. Returns the machine after a
// bounded run.
func propFabric(seed int64, shards int, par bool) (*sim.Machine, bool) {
	rng := rand.New(rand.NewSource(seed))
	sockets := []int{2, 4}[rng.Intn(2)]
	coresPer := []int{2, 4, 8}[rng.Intn(3)]
	tp := topo.Fabric(sockets, coresPer)
	cfg := sim.Config{Seed: uint64(seed), Shards: shards, ShardParallel: par,
		NewScheduler: cfs.Factory()}
	m := sim.New(tp, cfg)

	perSocket := make([]cpuset.Set, sockets)
	for _, ci := range tp.Cores {
		perSocket[ci.Socket] = perSocket[ci.Socket].Add(ci.ID)
	}
	useLB := rng.Intn(2) == 0
	models := []spmd.Model{spmd.UPC(), spmd.UPCSleep(), spmd.OpenMPDefault(), spmd.OpenMPInfinite()}
	model := models[rng.Intn(len(models))]
	usePerturb := rng.Intn(2) == 0
	if usePerturb {
		pcfg := perturb.Config{ShardLocal: true, Noise: perturb.DefaultNoise(),
			Freq: perturb.DefaultFreq()}
		m.AddActor(perturb.New(pcfg))
	}
	for s := 0; s < sockets; s++ {
		if useLB {
			lcfg := linuxlb.DefaultConfig()
			lcfg.Domain = perSocket[s]
			m.AddActor(linuxlb.New(lcfg))
		}
		app := spmd.Build(m, spmd.Spec{
			Name:             fmt.Sprintf("sock%d", s),
			Threads:          coresPer + rng.Intn(coresPer),
			Iterations:       2 + rng.Intn(8),
			WorkPerIteration: float64(1+rng.Intn(5)) * 1e6,
			WorkJitter:       0.4 * rng.Float64(),
			Model:            model,
			Affinity:         perSocket[s],
		})
		app.StartPinned()
	}
	// Bounded run: shard-local perturbation keeps the queue non-empty
	// forever, so the horizon, not queue drain, ends the run — the
	// contract perturb.Config.ShardLocal documents.
	m.Run(int64(2 * time.Second))
	return m, usePerturb
}

// TestPropertyWindowCrossCheck draws random socket-contained fabrics —
// the workloads where parallel windows open — and requires the window
// engine to reproduce the sequential engines bit-for-bit, with windows
// demonstrably opening in a majority of draws.
func TestPropertyWindowCrossCheck(t *testing.T) {
	draws := 20
	if testing.Short() {
		draws = 5
	}
	windowed := 0
	for i := 0; i < draws; i++ {
		seed := int64(3000 + i)
		legacy, _ := propFabric(seed, 1, false)
		want := Fingerprint(legacy)
		checkInvariants(t, fmt.Sprintf("fabric draw %d legacy", i), legacy)

		seq, _ := propFabric(seed, 8, false)
		if got := Fingerprint(seq); got != want {
			t.Errorf("fabric draw %d: sequential shards diverge:\n%s", i, firstDivergence(want, got))
		}

		par, _ := propFabric(seed, 8, true)
		checkInvariants(t, fmt.Sprintf("fabric draw %d windowed", i), par)
		if got := Fingerprint(par); got != want {
			t.Errorf("fabric draw %d: windowed engine diverges:\n%s", i, firstDivergence(want, got))
		}
		if par.Windows() > 0 {
			windowed++
		}
	}
	if windowed < draws/2 {
		t.Errorf("windows opened in only %d/%d draws — the generator no longer exercises the parallel path", windowed, draws)
	}
}
