// Package clean holds the sanctioned ownership shapes that must never
// fire: fire-and-forget, release-on-every-path, rebinding, and the
// ownership transfers that end tracking.
package clean

type Event struct{}

func (e *Event) Queued() bool { return false }

type Queue struct{}

func (q *Queue) PushPooled(at int64, fn func(now int64)) *Event { return &Event{} }
func (q *Queue) Release(e *Event)                               {}
func (q *Queue) Schedule(e *Event, at int64)                    {}

// fireAndForget never releases: after firing, the event loop itself
// recycles the struct. Not a leak.
func fireAndForget(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	if h.Queued() {
		return
	}
}

// releasedEverywhere releases on both exit paths: consistent, silent.
func releasedEverywhere(q *Queue, fast bool) {
	h := q.PushPooled(10, func(now int64) {})
	if fast {
		q.Release(h)
		return
	}
	q.Release(h)
}

// scheduleLive re-queues a live handle: that is what Schedule is for.
func scheduleLive(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	q.Schedule(h, 20)
}

// rebind: a fresh PushPooled into the same variable restarts tracking.
func rebind(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	q.Release(h)
	h = q.PushPooled(20, func(now int64) {})
	q.Release(h)
}

// handOff transfers ownership to the callee; the handle's fate is the
// callee's business.
func handOff(q *Queue, sink func(*Event)) {
	h := q.PushPooled(10, func(now int64) {})
	sink(h)
}

// storeInOwner parks the handle in a struct an owner manages.
type holder struct{ ev *Event }

func storeInOwner(q *Queue, hold *holder) {
	h := q.PushPooled(10, func(now int64) {})
	hold.ev = h
}

// returned handles belong to the caller.
func handedBack(q *Queue) *Event {
	h := q.PushPooled(10, func(now int64) {})
	return h
}
