// Command lbos-lint statically enforces the repository's determinism
// contract: experiment output must be a pure function of (machine,
// workload, balancer, seed), bit-identical at any Parallelism level.
//
// Usage:
//
//	lbos-lint [-only names] [-json] packages...
//	lbos-lint ./...
//
// It runs three analyzers (see each package's doc for the full rules):
//
//	nodeterm    wall-clock reads, global math/rand, nondeterministically
//	            seeded sources, selects that race, machine-global
//	            simulator calls from worker goroutines
//	maporder    range over a map feeding an output sink without a sort
//	slotsafety  Runner cell functions and go-launched worker goroutines
//	            that capture loop variables or mutate shared state
//	            outside their own slot
//
// Findings print as file:line:col: analyzer: message, and any finding
// makes the exit status 1, so CI can gate on it. A site that is
// deliberately exempt carries a //lint:allow-<category> directive on its
// line or the line above (categories: wallclock, rand, select, maporder,
// slotsafety, machineglobal).
//
// The implementation is stdlib-only (see internal/analysis); the
// analyzers follow the golang.org/x/tools/go/analysis shape, so they
// could be rehosted on a vet -vettool multichecker if x/tools is ever
// vendored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/slotsafety"
)

var all = []*analysis.Analyzer{nodeterm.Analyzer, maporder.Analyzer, slotsafety.Analyzer}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lbos-lint [-only names] [-json] packages...\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := all
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			found := false
			for _, a := range all {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "lbos-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
		}
	}

	pkgs, err := analysis.Load(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbos-lint:", err)
		os.Exit(2)
	}

	type finding struct {
		Position string `json:"position"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	findings := []finding{} // non-nil so -json renders [] when clean
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbos-lint: %s: %v\n", pkg.Path, err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings = append(findings, finding{
				Position: pkg.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lbos-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
