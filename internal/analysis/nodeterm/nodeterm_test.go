package nodeterm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "testdata/src", nodeterm.Analyzer, "a", "allow", "clean")
}
